// det_lint rule-engine tests: manifest parsing/classification, every rule on
// its golden fixture (firing / suppressed / clean), suppression grammar
// errors, report determinism, and the two acceptance gates — the full tree
// lints clean, and a seeded unordered_map iteration in overlay/router.cpp is
// caught with a file:line report.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/det_lint.hpp"

using ncc::lint::FileClass;
using ncc::lint::Finding;
using ncc::lint::Manifest;

namespace {

std::string repo_root() { return NCC_SOURCE_DIR; }

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot read " << path;
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::string fixture(const std::string& name) {
  return read_file(repo_root() + "/tests/lint_fixtures/" + name);
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  FileClass cls = FileClass::Deterministic) {
  std::vector<Finding> out;
  ncc::lint::lint_file(name, fixture(name), cls, &out);
  std::sort(out.begin(), out.end(), ncc::lint::finding_less);
  return out;
}

uint32_t count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  uint32_t n = 0;
  for (const Finding& f : fs) n += f.rule == rule;
  return n;
}

bool has(const std::vector<Finding>& fs, const std::string& rule,
         uint32_t line) {
  for (const Finding& f : fs)
    if (f.rule == rule && f.line == line) return true;
  return false;
}

TEST(Manifest, ParsesClassesAndRejectsGarbage) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(ncc::lint::parse_manifest(
      "# comment\n\ndeterministic src/\nmixed src/engine/engine.cpp\n"
      "observational src/obs/\n",
      &m, &err))
      << err;
  ASSERT_EQ(m.entries.size(), 3u);

  EXPECT_FALSE(ncc::lint::parse_manifest("quantum src/\n", &m, &err));
  EXPECT_NE(err.find("unknown class"), std::string::npos);
  EXPECT_FALSE(ncc::lint::parse_manifest("deterministic\n", &m, &err));
  EXPECT_FALSE(ncc::lint::parse_manifest("deterministic src/ extra\n", &m, &err));
  EXPECT_FALSE(ncc::lint::parse_manifest("# only comments\n", &m, &err));
}

TEST(Manifest, LongestPrefixWinsAtPathBoundaries) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(ncc::lint::parse_manifest(
      "deterministic src/\nobservational src/obs/\n"
      "mixed src/obs/special.cpp\n",
      &m, &err))
      << err;

  FileClass c;
  ASSERT_TRUE(m.classify("src/core/mst.cpp", &c));
  EXPECT_EQ(c, FileClass::Deterministic);
  ASSERT_TRUE(m.classify("src/obs/tracer.cpp", &c));
  EXPECT_EQ(c, FileClass::Observational);
  ASSERT_TRUE(m.classify("src/obs/special.cpp", &c));
  EXPECT_EQ(c, FileClass::Mixed);
  EXPECT_FALSE(m.classify("tools/ncc_run.cpp", &c));

  // `src/engine/engine.cpp` must not swallow `src/engine/engine.cpp2`-style
  // siblings, and a file entry must match exactly.
  Manifest m2;
  ASSERT_TRUE(ncc::lint::parse_manifest("mixed src/engine/engine.cpp\n", &m2,
                                        &err));
  ASSERT_TRUE(m2.classify("src/engine/engine.cpp", &c));
  EXPECT_FALSE(m2.classify("src/engine/engine.cpp.bak", &c));
  EXPECT_FALSE(m2.classify("src/engine/engine_extra.cpp", &c));
}

TEST(Rules, WallClockFires) {
  auto fs = lint_fixture("fire_wall_clock.cpp");
  EXPECT_EQ(fs.size(), count_rule(fs, "wall-clock"));
  EXPECT_TRUE(has(fs, "wall-clock", 3));   // #include <chrono>
  EXPECT_TRUE(has(fs, "wall-clock", 6));   // std::chrono::steady_clock::now()
  EXPECT_TRUE(has(fs, "wall-clock", 7));   // std::chrono::duration
  EXPECT_TRUE(has(fs, "wall-clock", 11));  // time(nullptr)
  EXPECT_TRUE(has(fs, "wall-clock", 12));  // clock()
}

TEST(Rules, RandomnessFires) {
  auto fs = lint_fixture("fire_randomness.cpp");
  EXPECT_EQ(count_rule(fs, "randomness"), 3u);
  EXPECT_TRUE(has(fs, "randomness", 6));  // std::random_device
  EXPECT_TRUE(has(fs, "randomness", 7));  // std::mt19937
  EXPECT_TRUE(has(fs, "randomness", 8));  // rand()
}

TEST(Rules, ThreadIdentityFires) {
  auto fs = lint_fixture("fire_thread_identity.cpp");
  EXPECT_EQ(count_rule(fs, "thread-identity"), 2u);
  EXPECT_TRUE(has(fs, "thread-identity", 5));  // thread_local
  EXPECT_TRUE(has(fs, "thread-identity", 8));  // std::this_thread
}

TEST(Rules, UnorderedContainerFires) {
  auto fs = lint_fixture("fire_unordered.cpp");
  EXPECT_EQ(count_rule(fs, "unordered-container"), 4u);
  EXPECT_TRUE(has(fs, "unordered-container", 3));  // include
  EXPECT_TRUE(has(fs, "unordered-container", 4));  // include
  EXPECT_TRUE(has(fs, "unordered-container", 6));  // parameter type
  EXPECT_TRUE(has(fs, "unordered-container", 7));  // local declaration
}

TEST(Rules, PointerKeyFires) {
  auto fs = lint_fixture("fire_pointer_key.cpp");
  EXPECT_TRUE(has(fs, "pointer-key", 9));   // std::map<const Network*, int>
  EXPECT_TRUE(has(fs, "pointer-key", 13));  // uintptr_t identity
  EXPECT_TRUE(has(fs, "reinterpret-cast", 13));
  EXPECT_GE(count_rule(fs, "pointer-key"), 2u);
}

TEST(Rules, ReinterpretCastFires) {
  auto fs = lint_fixture("fire_reinterpret_cast.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "reinterpret-cast");
  EXPECT_EQ(fs[0].line, 12u);
}

TEST(Suppression, WellFormedMarkersSilenceEveryRule) {
  auto fs = lint_fixture("suppressed_ok.cpp");
  EXPECT_TRUE(fs.empty()) << ncc::lint::format_report(
      {fs, 1, 0, 0});
}

TEST(Suppression, MalformedMarkersAreFindings) {
  auto fs = lint_fixture("suppressed_bad.cpp");
  EXPECT_EQ(count_rule(fs, "bad-suppression"), 3u);
  EXPECT_TRUE(has(fs, "bad-suppression", 5));   // missing reason
  EXPECT_TRUE(has(fs, "bad-suppression", 8));   // unknown rule in allow()
  EXPECT_TRUE(has(fs, "bad-suppression", 11));  // unknown tag
  // A failed suppression leaves its target line unprotected.
  EXPECT_TRUE(has(fs, "unordered-container", 6));
  EXPECT_TRUE(has(fs, "unordered-container", 9));
  EXPECT_TRUE(has(fs, "unordered-container", 12));
  // A valid suppression matching nothing is itself flagged.
  EXPECT_TRUE(has(fs, "unused-suppression", 14));
}

TEST(Rules, CleanFileStaysClean) {
  auto fs = lint_fixture("clean.cpp");
  EXPECT_TRUE(fs.empty()) << ncc::lint::format_report({fs, 1, 0, 0});
}

TEST(Rules, ObservationalClassTurnsRulesOff) {
  auto fs = lint_fixture("fire_wall_clock.cpp", FileClass::Observational);
  EXPECT_TRUE(fs.empty());
  // …but malformed suppressions are still findings there.
  auto bad = lint_fixture("suppressed_bad.cpp", FileClass::Observational);
  EXPECT_EQ(count_rule(bad, "bad-suppression"), 3u);
  EXPECT_EQ(count_rule(bad, "unordered-container"), 0u);
}

TEST(Rules, MixedClassEnforcesLikeDeterministic) {
  auto det = lint_fixture("fire_unordered.cpp", FileClass::Deterministic);
  auto mix = lint_fixture("fire_unordered.cpp", FileClass::Mixed);
  EXPECT_EQ(det.size(), mix.size());
}

TEST(Report, DeterministicOrderAndFormat) {
  auto a = lint_fixture("suppressed_bad.cpp");
  auto b = lint_fixture("suppressed_bad.cpp");
  ncc::lint::Report ra{a, 1, 10, 0}, rb{b, 1, 10, 0};
  EXPECT_EQ(ncc::lint::format_report(ra), ncc::lint::format_report(rb));
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), ncc::lint::finding_less));
  EXPECT_NE(ncc::lint::format_report(ra).find("suppressed_bad.cpp:5: [bad-suppression]"),
            std::string::npos);
}

// Acceptance gate 1: the real tree, classified by the checked-in manifest,
// has zero unsuppressed findings.
TEST(Tree, FullSrcLintsClean) {
  Manifest manifest;
  std::string err;
  ASSERT_TRUE(ncc::lint::parse_manifest(
      read_file(repo_root() + "/tools/det_lint_manifest.txt"), &manifest, &err))
      << err;

  ncc::lint::Report report;
  ASSERT_TRUE(
      ncc::lint::lint_tree(repo_root(), manifest, {"src"}, &report, &err))
      << err;
  EXPECT_TRUE(report.findings.empty()) << ncc::lint::format_report(report);
  EXPECT_GT(report.files, 80u);       // the walk actually visited the tree
  EXPECT_GT(report.suppressions, 5u); // the boundary is declared, not silent
}

// Acceptance gate 2: seeding an unordered_map iteration into
// overlay/router.cpp (a deterministic file) is caught at the right line.
TEST(Tree, SeededRouterViolationIsCaught) {
  std::string router = read_file(repo_root() + "/src/overlay/router.cpp");
  uint32_t base_lines = 1;
  for (char c : router) base_lines += c == '\n';
  router +=
      "\nstatic int det_lint_seeded_violation() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : m) s += v;\n"
      "  return s;\n"
      "}\n";

  std::vector<Finding> fs;
  ncc::lint::lint_file("src/overlay/router.cpp", router,
                       FileClass::Deterministic, &fs);
  ASSERT_FALSE(fs.empty());
  bool caught = false;
  for (const Finding& f : fs)
    caught |= f.rule == "unordered-container" && f.line == base_lines + 2 &&
              f.file == "src/overlay/router.cpp";
  EXPECT_TRUE(caught) << ncc::lint::format_report({fs, 1, 0, 0});
}

// The walk itself is deterministic: two runs produce byte-identical reports.
TEST(Tree, WalkIsDeterministic) {
  Manifest manifest;
  std::string err;
  ASSERT_TRUE(ncc::lint::parse_manifest(
      read_file(repo_root() + "/tools/det_lint_manifest.txt"), &manifest, &err));
  ncc::lint::Report r1, r2;
  ASSERT_TRUE(ncc::lint::lint_tree(repo_root(), manifest, {"src"}, &r1, &err));
  ASSERT_TRUE(ncc::lint::lint_tree(repo_root(), manifest, {"src"}, &r2, &err));
  EXPECT_EQ(ncc::lint::format_report(r1), ncc::lint::format_report(r2));
}

}  // namespace
