// Smoke tests for the communication primitives: end-to-end correctness of
// Aggregate-and-Broadcast, Aggregation, Multicast Tree Setup, Multicast and
// Multi-Aggregation on small networks.
#include <gtest/gtest.h>

#include "primitives/aggregate_broadcast.hpp"
#include "overlay/butterfly.hpp"
#include "primitives/aggregation.hpp"
#include "primitives/multi_aggregation.hpp"
#include "primitives/multicast.hpp"

using namespace ncc;

namespace {

Network make_net(NodeId n, uint64_t seed = 7) {
  NetConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  return Network(cfg);
}

}  // namespace

TEST(AggregateBroadcast, SumOfAllInputs) {
  const NodeId n = 37;  // deliberately not a power of two
  Network net = make_net(n);
  ButterflyOverlay topo(n);
  std::vector<std::optional<Val>> inputs(n);
  uint64_t expect = 0;
  for (NodeId u = 0; u < n; ++u) {
    inputs[u] = Val{u + 1ull, 0};
    expect += u + 1ull;
  }
  auto res = aggregate_and_broadcast(topo, net, inputs, agg::sum);
  ASSERT_TRUE(res.value.has_value());
  EXPECT_EQ((*res.value)[0], expect);
  EXPECT_EQ(net.stats().messages_dropped, 0u);
}

TEST(AggregateBroadcast, EmptyInputYieldsNothing) {
  Network net = make_net(16);
  ButterflyOverlay topo(16);
  std::vector<std::optional<Val>> inputs(16);
  auto res = aggregate_and_broadcast(topo, net, inputs, agg::sum);
  EXPECT_FALSE(res.value.has_value());
}

TEST(Aggregation, GroupSumsReachTargets) {
  const NodeId n = 64;
  Network net = make_net(n);
  Shared shared(n, 42);
  AggregationProblem prob;
  prob.combine = agg::sum;
  prob.target = [](uint64_t g) { return static_cast<NodeId>(g % 64); };
  prob.ell2_hat = 4;
  // Three groups; every node contributes to group (u % 3).
  std::vector<uint64_t> expect(3, 0);
  for (NodeId u = 0; u < n; ++u) {
    uint64_t g = u % 3;
    prob.items.push_back({u, g, Val{u + 1ull, 1}});
    expect[g] += u + 1ull;
  }
  auto res = run_aggregation(shared, net, prob);
  ASSERT_EQ(res.at_target.size(), 3u);
  for (uint64_t g = 0; g < 3; ++g) {
    ASSERT_TRUE(res.at_target.count(g));
    EXPECT_EQ(res.at_target.at(g)[0], expect[g]);
  }
  EXPECT_EQ(net.stats().messages_dropped, 0u);
}

TEST(MulticastAndTrees, PayloadReachesAllMembers) {
  const NodeId n = 50;
  Network net = make_net(n);
  Shared shared(n, 99);
  // Group 1: members 10..29, source 3. Group 2: members {5, 40}, source 41.
  std::vector<MulticastMembership> members;
  for (NodeId u = 10; u < 30; ++u) members.push_back({u, 1});
  members.push_back({5, 2});
  members.push_back({40, 2});
  auto setup = setup_multicast_trees(shared, net, members);
  EXPECT_GT(setup.trees.congestion, 0u);

  std::vector<MulticastSend> sends = {{1, 3, Val{111, 0}}, {2, 41, Val{222, 0}}};
  auto mc = run_multicast(shared, net, setup.trees, sends, /*ell_hat=*/1);
  for (NodeId u = 10; u < 30; ++u) {
    ASSERT_EQ(mc.received[u].size(), 1u) << "member " << u;
    EXPECT_EQ(mc.received[u][0].group, 1u);
    EXPECT_EQ(mc.received[u][0].val[0], 111u);
  }
  for (NodeId u : {NodeId{5}, NodeId{40}}) {
    ASSERT_EQ(mc.received[u].size(), 1u);
    EXPECT_EQ(mc.received[u][0].val[0], 222u);
  }
  EXPECT_TRUE(mc.received[0].empty());
  EXPECT_EQ(net.stats().messages_dropped, 0u);
}

TEST(MultiAggregation, MinOverGroupPayloads) {
  const NodeId n = 40;
  Network net = make_net(n);
  Shared shared(n, 5);
  // Node u is a member of groups {100 + (u % 4)}; sources 0..3 multicast
  // payloads; each node should receive the min payload over its groups.
  std::vector<MulticastMembership> members;
  for (NodeId u = 4; u < n; ++u) {
    members.push_back({u, 100 + (u % 4)});
    members.push_back({u, 100 + ((u + 1) % 4)});
  }
  auto setup = setup_multicast_trees(shared, net, members);
  std::vector<MulticastSend> sends;
  for (NodeId s = 0; s < 4; ++s)
    sends.push_back({100 + s, s, Val{(s + 1) * 10ull, 0}});
  auto ma = run_multi_aggregation(shared, net, setup.trees, sends, agg::min_by_first);
  for (NodeId u = 4; u < n; ++u) {
    uint64_t g1 = u % 4, g2 = (u + 1) % 4;
    uint64_t expect = std::min((g1 + 1) * 10ull, (g2 + 1) * 10ull);
    ASSERT_TRUE(ma.at_node[u].has_value()) << "node " << u;
    EXPECT_EQ((*ma.at_node[u])[0], expect) << "node " << u;
  }
  EXPECT_EQ(net.stats().messages_dropped, 0u);
}
