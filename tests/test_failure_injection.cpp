// Failure-injection tests: what happens when the model's adversarial drop
// rule actually fires. The primitives are engineered so overload never
// happens at the default capacity factor (w.h.p.); here we shrink the
// capacity until it does and verify (a) the network accounts for every drop,
// (b) damage is bounded and visible (never silent corruption into *wrong*
// aggregates — values can only go missing, not be invented).
#include <gtest/gtest.h>

#include <map>

#include "core/gossip.hpp"
#include "primitives/aggregation.hpp"

using namespace ncc;

TEST(FailureInjection, StarvedAggregationLosesButNeverInvents) {
  const NodeId n = 256;
  NetConfig cfg;
  cfg.n = n;
  cfg.capacity_factor = 1;  // cap = 8: far below the butterfly's needs
  cfg.strict_send = false;  // allow the overload instead of aborting
  cfg.seed = 3;
  Network net(cfg);
  Shared shared(n, 3);
  AggregationProblem prob;
  prob.combine = agg::sum;
  prob.target = [](uint64_t g) { return static_cast<NodeId>(g % 256); };
  prob.ell2_hat = 8;
  std::map<uint64_t, uint64_t> expect;
  Rng rng(5);
  for (NodeId u = 0; u < n; ++u)
    for (int j = 0; j < 8; ++j) {
      uint64_t g = rng.next_below(16);
      prob.items.push_back({u, g, Val{1, 0}});
      ++expect[g];
    }
  auto res = run_aggregation(shared, net, prob, 1);
  // The starved network must have dropped something...
  EXPECT_GT(net.stats().messages_dropped, 0u);
  // ...and aggregates may be partial, but never exceed the true sums.
  uint64_t received_total = 0;
  res.at_target.for_each([&](uint64_t g, const Val& v) {
    ASSERT_TRUE(expect.count(g));
    EXPECT_LE(v[0], expect[g]) << "group " << g;
    received_total += v[0];
  });
  EXPECT_LT(received_total, static_cast<uint64_t>(prob.items.size()));
}

TEST(FailureInjection, DropsAreDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    NetConfig cfg;
    cfg.n = 128;
    cfg.capacity_factor = 1;
    cfg.strict_send = false;
    cfg.seed = seed;
    Network net(cfg);
    Shared shared(128, 9);
    AggregationProblem prob;
    prob.combine = agg::sum;
    prob.target = [](uint64_t g) { return static_cast<NodeId>(g % 128); };
    prob.ell2_hat = 8;
    for (NodeId u = 0; u < 128; ++u)
      for (int j = 0; j < 8; ++j) prob.items.push_back({u, (u + j) % 8u, Val{1, 0}});
    run_aggregation(shared, net, prob, 1);
    return net.stats().messages_dropped;
  };
  EXPECT_EQ(run(1), run(1));
}

TEST(FailureInjection, GossipSaturatesExactlyAtCapacity) {
  // Gossip is tuned to receive exactly `cap` messages per node per round:
  // it must ride the capacity edge without a single drop.
  NetConfig cfg;
  cfg.n = 300;
  cfg.capacity_factor = 4;
  cfg.seed = 11;
  Network net(cfg);
  auto res = run_gossip(net);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(net.stats().messages_dropped, 0u);
  EXPECT_EQ(net.stats().max_recv_load, net.cap());
}

TEST(FailureInjection, OverloadHalvesWithDoubledCapacity) {
  auto drops_at = [](uint32_t factor) {
    NetConfig cfg;
    cfg.n = 256;
    cfg.capacity_factor = factor;
    cfg.strict_send = false;
    cfg.seed = 17;
    Network net(cfg);
    // Flood: identical pressure regardless of the capacity under test.
    const uint32_t flood = 64;
    Rng rng(23);
    for (int round = 0; round < 4; ++round) {
      for (NodeId u = 0; u < 256; ++u) {
        for (uint32_t j = 0; j < flood; ++j) {
          NodeId v = static_cast<NodeId>(rng.next_below(256));
          if (v != u) net.send(u, v, 1, {u});
        }
      }
      net.end_round();
    }
    return net.stats().messages_dropped;
  };
  uint64_t d1 = drops_at(1), d4 = drops_at(4);
  EXPECT_GT(d1, 0u);
  EXPECT_GT(d1, d4);  // more capacity, fewer drops under identical pressure
}
