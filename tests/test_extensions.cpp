// Tests for the paper-remarked extensions (multi-source Multicast and
// Multi-Aggregation), the connected-components corollary, and the
// orientation fallback paths (U_high broadcast / direct resolution) that the
// default parameters never exercise.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/components.hpp"
#include "core/orientation_algo.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "primitives/multi_aggregation.hpp"
#include "primitives/multicast.hpp"

using namespace ncc;

namespace {
Network make(NodeId n, uint64_t seed = 1) {
  NetConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  return Network(cfg);
}
}  // namespace

TEST(MultiSourceMulticast, OneNodeSourcesManyGroups) {
  const NodeId n = 64;
  Network net = make(n, 2);
  Shared shared(n, 2);
  // Node 0 sources 40 groups (> log n: forces several handoff batches).
  std::vector<MulticastMembership> members;
  std::vector<MulticastSend> sends;
  for (uint64_t gi = 0; gi < 40; ++gi) {
    uint64_t group = 900 + gi;
    members.push_back({static_cast<NodeId>(1 + gi % (n - 1)), group});
    sends.push_back({group, 0, Val{gi, 0}});
  }
  auto setup = setup_multicast_trees(shared, net, members, 2);
  auto mc = run_multicast_multi(shared, net, setup.trees, sends, 1, 3);
  for (uint64_t gi = 0; gi < 40; ++gi) {
    NodeId m = static_cast<NodeId>(1 + gi % (n - 1));
    bool got = false;
    for (const AggPacket& p : mc.received[m])
      if (p.group == 900 + gi && p.val[0] == gi) got = true;
    EXPECT_TRUE(got) << gi;
  }
  EXPECT_EQ(net.stats().messages_dropped, 0u);
}

TEST(MultiSourceMulticastDeathTest, SingleSourceVariantRejectsDuplicates) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto duplicate_sources = [] {
    const NodeId n = 32;
    Network net = make(n, 3);
    Shared shared(n, 3);
    std::vector<MulticastMembership> members{{1, 10}, {2, 11}};
    auto setup = setup_multicast_trees(shared, net, members, 1);
    std::vector<MulticastSend> sends{{10, 0, Val{1, 0}}, {11, 0, Val{2, 0}}};
    run_multicast(shared, net, setup.trees, sends, 1);
  };
  EXPECT_DEATH(duplicate_sources(), "at most one multicast");
}

TEST(MultiSourceMultiAggregation, AggregatesAcrossGroupsOfOneSource) {
  const NodeId n = 64;
  Network net = make(n, 5);
  Shared shared(n, 5);
  // Node 7 sources 3 groups with overlapping members; members must receive
  // the min payload over the groups they belong to.
  std::vector<MulticastMembership> members;
  std::vector<MulticastSend> sends;
  std::map<NodeId, uint64_t> expect;
  for (uint64_t gi = 0; gi < 3; ++gi) {
    uint64_t group = 500 + gi;
    uint64_t payload = 100 - gi * 10;
    for (NodeId m = 20; m < 30 + 5 * gi; ++m) {
      members.push_back({m, group});
      auto it = expect.find(m);
      if (it == expect.end())
        expect[m] = payload;
      else
        it->second = std::min(it->second, payload);
    }
    sends.push_back({group, 7, Val{payload, 0}});
  }
  auto setup = setup_multicast_trees(shared, net, members, 5);
  auto ma = run_multi_aggregation_multi(shared, net, setup.trees, sends,
                                        agg::min_by_first, 6);
  for (auto& [m, v] : expect) {
    ASSERT_TRUE(ma.at_node[m].has_value()) << m;
    EXPECT_EQ((*ma.at_node[m])[0], v) << m;
  }
}

TEST(Components, CountsAndLabelsMatchGroundTruth) {
  // Path + cycle + isolated nodes.
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < 10; ++i) edges.emplace_back(i, i + 1);
  for (NodeId i = 10; i < 19; ++i) edges.emplace_back(i, i + 1);
  edges.emplace_back(19, 10);
  Graph g(24, std::move(edges));
  Network net = make(g.n(), 7);
  Shared shared(g.n(), 7);
  auto res = run_components(shared, net, g);
  EXPECT_EQ(res.count, component_count(g));
  // Labels constant within components, distinct across.
  for (const Edge& e : g.edges()) EXPECT_EQ(res.leader[e.u], res.leader[e.v]);
  EXPECT_NE(res.leader[0], res.leader[10]);
  EXPECT_NE(res.leader[20], res.leader[21]);
  // Forest is a spanning forest: n - #components edges.
  EXPECT_EQ(res.forest.size(), g.n() - res.count);
}

TEST(Components, SingleComponent) {
  Rng rng(9);
  Graph g = connectify(gnm_graph(50, 80, rng), rng);
  Network net = make(g.n(), 11);
  Shared shared(g.n(), 11);
  auto res = run_components(shared, net, g);
  EXPECT_EQ(res.count, 1u);
  EXPECT_EQ(res.forest.size(), 49u);
}

TEST(OrientationFallback, WeakParametersStillCorrect) {
  // c = 1 with no retries makes step-1 identification fail regularly and
  // routes the failures through the direct (U_high-style) resolution; the
  // orientation must still come out complete and O(a).
  Rng rng(13);
  Graph g = gnm_graph(96, 480, rng);  // denser: many red edges per node
  Network net = make(g.n(), 13);
  Shared shared(g.n(), 13);
  OrientationAlgoParams params;
  params.c = 1;
  params.max_retries = 0;
  auto res = run_orientation(shared, net, g, params);
  EXPECT_TRUE(res.orientation.complete());
  EXPECT_GT(res.unsuccessful_first, 0u);  // the weak parameters did fail
  uint32_t degen = degeneracy(g).degeneracy;
  EXPECT_LE(res.orientation.max_outdegree(), 4 * degen);
}

TEST(OrientationFallback, StarCenterViaDensePhase) {
  // In phase 2 of a star the center's d(u) - d_i(u) = n - 1 > n / log n, so
  // if it fails step 1 it must go through the U_high broadcast. With c = 1
  // failures are common; either way the run must finish correctly.
  Graph g = star_graph(256);
  Network net = make(g.n(), 17);
  Shared shared(g.n(), 17);
  OrientationAlgoParams params;
  params.c = 1;
  params.max_retries = 0;
  auto res = run_orientation(shared, net, g, params);
  EXPECT_TRUE(res.orientation.complete());
  EXPECT_EQ(res.orientation.outdegree(0), 0u);
}
