// Unit tests for the graph substrate: representation, generators, properties,
// and the Orientation data type.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/orientation.hpp"
#include "graph/properties.hpp"

using namespace ncc;

TEST(GraphRepr, BasicAccessors) {
  Graph g(4, {Edge(0, 1, 5), Edge(1, 2, 7), Edge(0, 3, 2)});
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.weight(1, 2), 7u);
  EXPECT_EQ(g.weight(2, 1), 7u);
  EXPECT_EQ(g.max_weight(), 7u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

TEST(GraphRepr, NeighborsSorted) {
  Graph g(5, {Edge(2, 4), Edge(2, 0), Edge(2, 3), Edge(2, 1)});
  auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(GraphRepr, EdgeIdCanonical) {
  EXPECT_EQ(edge_id(3, 7), edge_id(7, 3));
  EXPECT_NE(arc_id(3, 7), arc_id(7, 3));
  EXPECT_EQ(arc_id(3, 7) >> 32, 3u);
  EXPECT_EQ(arc_id(3, 7) & 0xffffffffu, 7u);
}

TEST(Generators, SizesAndShapes) {
  EXPECT_EQ(path_graph(10).m(), 9u);
  EXPECT_EQ(cycle_graph(10).m(), 10u);
  EXPECT_EQ(star_graph(10).m(), 9u);
  EXPECT_EQ(star_graph(10).degree(0), 9u);
  EXPECT_EQ(complete_graph(8).m(), 28u);
  EXPECT_EQ(grid_graph(4, 5).n(), 20u);
  EXPECT_EQ(grid_graph(4, 5).m(), 4u * 4 + 3u * 5);
  EXPECT_EQ(hypercube_graph(4).n(), 16u);
  EXPECT_EQ(hypercube_graph(4).m(), 32u);
  EXPECT_EQ(triangulated_grid_graph(3, 3).m(), 12u + 4u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(5);
  for (NodeId n : {2u, 3u, 10u, 100u}) {
    Graph t = random_tree(n, rng);
    EXPECT_EQ(t.m(), n - 1u);
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(Generators, ForestUnionArboricityBracket) {
  Rng rng(6);
  for (uint32_t a : {1u, 2u, 5u}) {
    Graph g = random_forest_union(200, a, rng);
    // Union of a forests: arboricity <= a <= degeneracy-based upper bound...
    EXPECT_LE(arboricity_lower_bound(g), a);
    // ... and degeneracy <= 2a - 1 cannot be guaranteed pointwise, but
    // degeneracy <= 2a always holds for a union of a forests.
    EXPECT_LE(degeneracy(g).degeneracy, 2 * a);
  }
}

TEST(Generators, GnmExactEdgeCount) {
  Rng rng(7);
  Graph g = gnm_graph(50, 300, rng);
  EXPECT_EQ(g.m(), 300u);
  std::set<Edge> uniq(g.edges().begin(), g.edges().end());
  EXPECT_EQ(uniq.size(), 300u);
}

TEST(Generators, GnpEndpoints) {
  Rng rng(8);
  EXPECT_EQ(gnp_graph(20, 0.0, rng).m(), 0u);
  EXPECT_EQ(gnp_graph(20, 1.0, rng).m(), 190u);
}

TEST(Generators, PowerLawRespectsDegreeCap) {
  Rng rng(9);
  Graph g = power_law_graph(300, 2.5, 20, rng);
  EXPECT_LE(g.max_degree(), 20u);
  EXPECT_GT(g.m(), 0u);
}

TEST(Generators, ConnectifyConnects) {
  Rng rng(10);
  std::vector<Edge> edges{Edge(0, 1), Edge(2, 3), Edge(4, 5)};
  Graph g(8, std::move(edges));  // 3 edges + isolated 6, 7
  EXPECT_FALSE(is_connected(g));
  Graph c = connectify(g, rng);
  EXPECT_TRUE(is_connected(c));
  // Original edges preserved.
  EXPECT_TRUE(c.has_edge(0, 1));
  EXPECT_TRUE(c.has_edge(2, 3));
}

TEST(Generators, DistinctWeightsArePermutation) {
  Rng rng(11);
  Graph g = with_distinct_weights(gnm_graph(30, 60, rng), rng);
  std::set<Weight> ws;
  for (const Edge& e : g.edges()) ws.insert(e.w);
  EXPECT_EQ(ws.size(), 60u);
  EXPECT_EQ(*ws.begin(), 1u);
  EXPECT_EQ(*ws.rbegin(), 60u);
}

TEST(Properties, BfsAndDiameter) {
  Graph p = path_graph(10);
  auto d = bfs_distances(p, 0);
  EXPECT_EQ(d[9], 9u);
  EXPECT_EQ(exact_diameter(p), 9u);
  EXPECT_EQ(exact_diameter(cycle_graph(10)), 5u);
  EXPECT_EQ(exact_diameter(star_graph(10)), 2u);
  EXPECT_EQ(exact_diameter(grid_graph(3, 4)), 5u);
  EXPECT_LE(diameter_lower_bound(cycle_graph(10)), 5u);
  EXPECT_GE(diameter_lower_bound(path_graph(10)), 9u);
}

TEST(Properties, ComponentCount) {
  std::vector<Edge> edges{Edge(0, 1), Edge(2, 3)};
  Graph g(6, std::move(edges));
  EXPECT_EQ(component_count(g), 4u);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_FALSE(is_connected(g));
}

TEST(Properties, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(path_graph(10)).degeneracy, 1u);
  EXPECT_EQ(degeneracy(cycle_graph(10)).degeneracy, 2u);
  EXPECT_EQ(degeneracy(star_graph(10)).degeneracy, 1u);
  EXPECT_EQ(degeneracy(complete_graph(6)).degeneracy, 5u);
  EXPECT_EQ(degeneracy(grid_graph(5, 5)).degeneracy, 2u);
}

TEST(Properties, ArboricityBoundsBracketTruth) {
  // Known arboricity values: tree = 1, cycle = 2 (m/(n-1) > 1), K6 = 3.
  EXPECT_EQ(arboricity_lower_bound(path_graph(10)), 1u);
  EXPECT_EQ(arboricity_lower_bound(cycle_graph(10)), 2u);
  EXPECT_EQ(arboricity_lower_bound(complete_graph(6)), 3u);
  EXPECT_GE(arboricity_upper_bound(complete_graph(6)), 3u);
}

TEST(OrientationType, OrientAndQuery) {
  Graph g(4, {Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(0, 3)});
  Orientation o(g);
  EXPECT_FALSE(o.complete());
  o.orient(0, 1);
  o.orient(2, 1);
  EXPECT_TRUE(o.is_oriented(0, 1));
  EXPECT_FALSE(o.is_oriented(2, 3));
  EXPECT_TRUE(o.directed_from(0, 1));
  EXPECT_FALSE(o.directed_from(1, 0));
  EXPECT_TRUE(o.directed_from(2, 1));
  EXPECT_EQ(o.outdegree(0), 1u);
  EXPECT_EQ(o.indegree(1), 2u);
  o.orient(2, 3);
  o.orient(0, 3);
  EXPECT_TRUE(o.complete());
  EXPECT_EQ(o.max_outdegree(), 2u);
  EXPECT_TRUE(is_valid_k_orientation(o, 2));
  EXPECT_FALSE(is_valid_k_orientation(o, 1));
  auto out0 = o.out_neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()),
            (std::vector<NodeId>{1, 3}));
}
