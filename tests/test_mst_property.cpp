// Parameterized MST property sweep: weight-match with Kruskal and spanning
// validity over a matrix of generators × seeds (Section 3).
#include <gtest/gtest.h>

#include <functional>

#include "baselines/sequential.hpp"
#include "core/mst.hpp"
#include "graph/generators.hpp"

using namespace ncc;

namespace {

struct MstCase {
  std::string name;
  std::function<Graph(Rng&)> make;
  uint64_t seed;
};

class MstProperty : public ::testing::TestWithParam<MstCase> {};

}  // namespace

TEST_P(MstProperty, WeightMatchesKruskal) {
  const auto& mc = GetParam();
  Rng rng(mc.seed);
  Graph g = mc.make(rng);
  Network net(NetConfig{.n = g.n(), .capacity_factor = 8, .strict_send = true,
                        .seed = mc.seed});
  Shared shared(g.n(), mc.seed);
  auto res = run_mst(shared, net, g, {}, mc.seed);
  EXPECT_TRUE(is_spanning_forest(g, res.edges));
  EXPECT_EQ(res.total_weight, kruskal_msf(g).total_weight);
  EXPECT_EQ(net.stats().messages_dropped, 0u);
  // Boruvka with Heads/Tails: phases stay O(log n) (constant ~2.5).
  EXPECT_LE(res.phases, 8 * cap_log(g.n()) + 8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MstProperty,
    ::testing::Values(
        MstCase{"weighted_grid",
                [](Rng& r) { return with_random_weights(grid_graph(6, 6), 500, r); }, 1},
        MstCase{"weighted_star",
                [](Rng& r) { return with_random_weights(star_graph(48), 100, r); }, 2},
        MstCase{"weighted_cycle",
                [](Rng& r) { return with_random_weights(cycle_graph(40), 64, r); }, 3},
        MstCase{"distinct_gnm",
                [](Rng& r) { return with_distinct_weights(gnm_graph(48, 160, r), r); },
                4},
        MstCase{"distinct_gnm2",
                [](Rng& r) { return with_distinct_weights(gnm_graph(48, 160, r), r); },
                5},
        MstCase{"weighted_forest",
                [](Rng& r) {
                  return with_random_weights(random_forest_union(56, 3, r), 1000, r);
                },
                6},
        MstCase{"weighted_powerlaw",
                [](Rng& r) {
                  return with_random_weights(power_law_graph(56, 2.5, 16, r), 300, r);
                },
                7},
        MstCase{"weighted_hypercube",
                [](Rng& r) { return with_random_weights(hypercube_graph(5), 77, r); },
                8},
        MstCase{"two_components",
                [](Rng& r) {
                  // Two disjoint weighted cliques.
                  std::vector<Edge> edges;
                  for (NodeId u = 0; u < 10; ++u)
                    for (NodeId v = u + 1; v < 10; ++v)
                      edges.emplace_back(u, v, 1 + r.next_below(50));
                  for (NodeId u = 10; u < 20; ++u)
                    for (NodeId v = u + 1; v < 20; ++v)
                      edges.emplace_back(u, v, 1 + r.next_below(50));
                  return Graph(24, std::move(edges));  // + 4 isolated nodes
                },
                9},
        MstCase{"tiny", [](Rng&) { return Graph(2, {Edge(0, 1, 7)}); }, 10},
        MstCase{"weighted_ba",
                [](Rng& r) {
                  return with_random_weights(barabasi_albert_graph(48, 2, r), 999, r);
                },
                11}),
    [](const ::testing::TestParamInfo<MstCase>& pinfo) {
      return pinfo.param.name + "_s" + std::to_string(pinfo.param.seed);
    });
