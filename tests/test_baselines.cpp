// Tests for the sequential baselines and the validity checkers (the checkers
// themselves must reject invalid solutions, or every other test is hollow).
#include <gtest/gtest.h>

#include "baselines/sequential.hpp"
#include "graph/generators.hpp"

using namespace ncc;

TEST(Kruskal, KnownTriangle) {
  Graph g(3, {Edge(0, 1, 1), Edge(1, 2, 2), Edge(0, 2, 3)});
  auto res = kruskal_msf(g);
  EXPECT_EQ(res.total_weight, 3u);
  EXPECT_EQ(res.edges.size(), 2u);
}

TEST(Kruskal, ForestOnDisconnected) {
  Graph g(5, {Edge(0, 1, 4), Edge(2, 3, 9)});
  auto res = kruskal_msf(g);
  EXPECT_EQ(res.edges.size(), 2u);
  EXPECT_EQ(res.total_weight, 13u);
}

TEST(SpanningForestChecker, AcceptsAndRejects) {
  Graph g = cycle_graph(4);
  auto kr = kruskal_msf(g);
  EXPECT_TRUE(is_spanning_forest(g, kr.edges));
  // A cycle is not a forest.
  EXPECT_FALSE(is_spanning_forest(g, g.edges()));
  // Disconnecting edge sets are rejected.
  EXPECT_FALSE(is_spanning_forest(g, {Edge(0, 1)}));
  // Edges not in g are rejected.
  Graph p = path_graph(4);
  EXPECT_FALSE(is_spanning_forest(p, {Edge(0, 1), Edge(1, 2), Edge(0, 3)}));
}

TEST(GreedyMis, ValidOnSamples) {
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    Graph g = gnm_graph(40, 100, rng);
    auto mis = greedy_mis(g);
    EXPECT_TRUE(is_maximal_independent_set(g, mis));
  }
}

TEST(MisChecker, RejectsNonIndependentAndNonMaximal) {
  Graph g = path_graph(4);  // 0-1-2-3
  std::vector<bool> adjacent{true, true, false, false};
  EXPECT_FALSE(is_independent_set(g, adjacent));
  std::vector<bool> not_maximal{true, false, false, false};  // 3 is free
  EXPECT_TRUE(is_independent_set(g, not_maximal));
  EXPECT_FALSE(is_maximal_independent_set(g, not_maximal));
  std::vector<bool> good{true, false, true, false};
  EXPECT_TRUE(is_maximal_independent_set(g, good));
}

TEST(GreedyMatching, ValidOnSamples) {
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    Graph g = gnm_graph(40, 90, rng);
    auto m = greedy_maximal_matching(g);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(MatchingChecker, RejectsBadStructures) {
  Graph g = path_graph(4);
  // Asymmetric mate pointers.
  std::vector<NodeId> bad{1, UINT32_MAX, UINT32_MAX, UINT32_MAX};
  EXPECT_FALSE(is_matching(g, bad));
  // Mate over a non-edge.
  std::vector<NodeId> nonedge{2, UINT32_MAX, 0, UINT32_MAX};
  EXPECT_FALSE(is_matching(g, nonedge));
  // Valid but not maximal: edge {2,3} is addable.
  std::vector<NodeId> notmax{1, 0, UINT32_MAX, UINT32_MAX};
  EXPECT_TRUE(is_matching(g, notmax));
  EXPECT_FALSE(is_maximal_matching(g, notmax));
}

TEST(GreedyColoring, DegeneracyPlusOneColors) {
  Graph g = complete_graph(5);
  auto col = greedy_coloring(g);
  EXPECT_TRUE(is_proper_coloring(g, col));
  uint32_t max_c = 0;
  for (uint32_t c : col) max_c = std::max(max_c, c);
  EXPECT_EQ(max_c, 4u);  // K5 needs exactly 5 colors

  Graph p = path_graph(10);
  auto col2 = greedy_coloring(p);
  EXPECT_TRUE(is_proper_coloring(p, col2));
  uint32_t max2 = 0;
  for (uint32_t c : col2) max2 = std::max(max2, c);
  EXPECT_LE(max2, 1u);  // degeneracy 1 -> 2 colors
}

TEST(ColoringChecker, RejectsConflictsAndUncolored) {
  Graph g = path_graph(3);
  EXPECT_FALSE(is_proper_coloring(g, {0, 0, 1}));
  EXPECT_FALSE(is_proper_coloring(g, {0, UINT32_MAX, 1}));
  EXPECT_TRUE(is_proper_coloring(g, {0, 1, 0}));
}
